module G = Broker_graph.Graph
module Bfs = Broker_graph.Bfs

type result = {
  brokers : int array;
  coverage_brokers : int array;
  connectors : int array;
  x_star : int;
  theta : int;
  root : int;
}

let ceil_half beta = (beta + 1) / 2

let x_star ~k ~beta =
  if k < 1 || beta < 1 then invalid_arg "Mcbg.x_star";
  min k (((k - 1) / ceil_half beta) + 1)

let theta ~beta = if beta mod 2 = 0 then beta else beta + 1

(* Connectors for root [r]: walk the BFS shortest path from r to every other
   coverage broker, inserting a connector wherever an edge has no dominated
   endpoint yet. [member] must answer membership of B' plus the connectors
   accumulated so far for this root. *)
let connectors_for g ~coverage_set ~root ~targets =
  let parents = Bfs.parents g root in
  let added = Hashtbl.create 64 in
  let member v = Hashtbl.mem coverage_set v || Hashtbl.mem added v in
  Array.iter
    (fun v ->
      if v <> root then begin
        match Bfs.path_to ~parents ~src:root v with
        | [] -> () (* disconnected from root: no path to dominate *)
        | path ->
            let p = Array.of_list path in
            let m = Array.length p - 1 in
            let i = ref 0 in
            while !i < m do
              if member p.(!i) || member p.(!i + 1) then incr i
              else begin
                Hashtbl.replace added p.(!i + 1) ();
                i := !i + 2
              end
            done
      end)
    targets;
  Hashtbl.fold (fun v () acc -> v :: acc) added []

let guarantees_dominating_paths g brokers =
  if Array.length brokers = 0 then true
  else begin
    let n = G.n g in
    let is_broker = Connectivity.of_brokers ~n brokers in
    let covered = Array.make n false in
    Array.iter
      (fun b ->
        covered.(b) <- true;
        G.iter_neighbors g b (fun w -> covered.(w) <- true))
      brokers;
    let edge_ok = Connectivity.edge_ok ~is_broker in
    let dist = Bfs.distances_filtered g ~edge_ok brokers.(0) in
    let ok = ref true in
    for v = 0 to n - 1 do
      if covered.(v) && dist.(v) < 0 then ok := false
    done;
    !ok
  end

let run ?(all_roots = true) g ~k ~beta =
  if k < 1 || beta < 1 then invalid_arg "Mcbg.run";
  let xs = x_star ~k ~beta in
  let coverage_brokers = Greedy_mcb.celf g ~k:xs in
  let coverage_set = Hashtbl.create (2 * Array.length coverage_brokers) in
  Array.iter (fun v -> Hashtbl.replace coverage_set v ()) coverage_brokers;
  let roots =
    if Array.length coverage_brokers = 0 then [||]
    else if all_roots then coverage_brokers
    else [| coverage_brokers.(0) |]
  in
  let best_root = ref (if Array.length roots > 0 then roots.(0) else -1) in
  let best_connectors = ref [] in
  let best_count = ref max_int in
  Array.iter
    (fun r ->
      let conns = connectors_for g ~coverage_set ~root:r ~targets:coverage_brokers in
      let count = List.length conns in
      if count < !best_count then begin
        best_count := count;
        best_root := r;
        best_connectors := conns
      end)
    roots;
  let connectors = if !best_count = max_int then [] else !best_connectors in
  (* Assemble B, then spend any leftover budget on further constrained
     greedy coverage picks (kept inside the dominated region so the
     B-dominating guarantee is preserved — see DESIGN.md §5). *)
  let cov = Coverage.create g in
  Array.iter (Coverage.add cov) coverage_brokers;
  List.iter (Coverage.add cov) connectors;
  if Coverage.size cov < k then Maxsg.grow cov ~k;
  {
    brokers = Coverage.brokers cov;
    coverage_brokers;
    connectors = Array.of_list connectors;
    x_star = xs;
    theta = theta ~beta;
    root = !best_root;
  }
