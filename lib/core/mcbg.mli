(** Algorithm 2 of the paper: the approximation algorithm for the MCBG
    problem on an (α,β)-graph, with ratio [(1 - 1/e) / θ] where
    [θ = 2⌈β/2⌉] (Theorem 3).

    The budget [k] is split: [x* = ⌊(k-1)/⌈β/2⌉⌋ + 1] "coverage" brokers
    are chosen by the greedy MCB Algorithm 1; the remainder buys
    "connectors" placed along shortest paths from a root coverage broker to
    every other coverage broker, so each such path is B-dominated — making
    the whole broker set mutually reachable over dominated paths and thereby
    satisfying the MCBG constraint for all covered pairs. Among candidate
    roots the one needing the fewest connectors wins (lines 2–11 of
    Algorithm 2). Left-over budget is spent on further greedy coverage
    picks. *)

type result = {
  brokers : int array;  (** the full broker set B *)
  coverage_brokers : int array;  (** B′, in greedy order *)
  connectors : int array;  (** B″ *)
  x_star : int;
  theta : int;
  root : int;  (** chosen root coverage broker *)
}

val run :
  ?all_roots:bool -> Broker_graph.Graph.t -> k:int -> beta:int -> result
(** [all_roots] (default [true]) tries every coverage broker as root as in
    the paper's pseudocode; [false] tries only the first (highest-gain)
    one — a practical shortcut for very large k with near-identical output
    (see bench [ablation_beta]).
    @raise Invalid_argument when [k < 1] or [beta < 1]. *)

val x_star : k:int -> beta:int -> int
(** The coverage-broker budget for a given [k] and [beta]. *)

val theta : beta:int -> int
(** [θ = β] for even β, [β + 1] for odd — the approximation-ratio
    denominator of Theorem 3. *)

val guarantees_dominating_paths : Broker_graph.Graph.t -> int array -> bool
(** Check the MCBG feasibility condition on an output: between every pair of
    covered vertices there is a B-dominating path (i.e. they are connected
    in the B-restricted graph). Used by tests. *)
