module T = Broker_topo.Topology
module Nm = Broker_topo.Node_meta

type share = { kind : Nm.kind; count : int; fraction : float }

let shares topo ~brokers =
  let total = Array.length brokers in
  let count_of kind =
    Array.fold_left
      (fun acc v -> if Nm.kind_equal topo.T.kinds.(v) kind then acc + 1 else acc)
      0 brokers
  in
  Nm.all_kinds
  |> List.filter_map (fun kind ->
         let count = count_of kind in
         if count = 0 then None
         else
           Some
             {
               kind;
               count;
               fraction =
                 (if total = 0 then 0.0
                  else float_of_int count /. float_of_int total);
             })
  |> List.sort (fun a b -> Int.compare b.count a.count)

type ranked = { rank : int; node : int; kind : Nm.kind; name : string; degree : int }

let ranking topo ~brokers =
  Array.mapi
    (fun i v ->
      {
        rank = i + 1;
        node = v;
        kind = topo.T.kinds.(v);
        name = topo.T.names.(v);
        degree = Broker_graph.Graph.degree topo.T.graph v;
      })
    brokers

let first_ixp_ranks topo ~brokers =
  let acc = ref [] in
  Array.iteri
    (fun i v -> if T.is_ixp topo v then acc := (i + 1) :: !acc)
    brokers;
  List.rev !acc
