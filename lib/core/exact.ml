module G = Broker_graph.Graph

let check_size g =
  if G.n g > 25 then invalid_arg "Exact: graph too large for enumeration"

(* Closed neighbourhoods as bitmasks. *)
let neighbourhood_masks g =
  Array.init (G.n g) (fun v ->
      G.fold_neighbors g v (fun acc w -> acc lor (1 lsl w)) (1 lsl v))

let popcount x =
  let rec go x acc = if x = 0 then acc else go (x land (x - 1)) (acc + 1) in
  go x 0

let members_of_mask n mask =
  let acc = ref [] in
  for v = n - 1 downto 0 do
    if mask land (1 lsl v) <> 0 then acc := v :: !acc
  done;
  Array.of_list !acc

(* Enumerate all size-<=k subsets by recursion with a simple upper-bound
   prune: the best remaining coverage adds at most the sum of the largest
   remaining closed neighbourhoods. *)
let enumerate g ~k ~accept =
  check_size g;
  let n = G.n g in
  let nbr = neighbourhood_masks g in
  let best_val = ref (-1) in
  let best_set = ref 0 in
  let nbr_sizes = Array.map popcount nbr in
  (* max closed-neighbourhood size from index i on *)
  let suffix_max = Array.make (n + 1) 0 in
  for i = n - 1 downto 0 do
    suffix_max.(i) <- max nbr_sizes.(i) suffix_max.(i + 1)
  done;
  let rec go start chosen_mask covered budget =
    let value = popcount covered in
    if value > !best_val && accept chosen_mask then begin
      best_val := value;
      best_set := chosen_mask
    end;
    (* Prune when even the most optimistic extension cannot beat the best
       accepted set found so far. *)
    if budget > 0 && start < n && value + (budget * suffix_max.(start)) > !best_val
    then
      for v = start to n - 1 do
        go (v + 1) (chosen_mask lor (1 lsl v)) (covered lor nbr.(v)) (budget - 1)
      done
  in
  go 0 0 0 (min k n);
  (members_of_mask n !best_set, max !best_val 0)

let mcb_opt g ~k = enumerate g ~k ~accept:(fun _ -> true)

let mcbg_opt g ~k =
  let n = G.n g in
  enumerate g ~k ~accept:(fun mask ->
      Mcbg.guarantees_dominating_paths g (members_of_mask n mask))

let pds_exists g ~k =
  let _, value = mcbg_opt g ~k in
  value = G.n g
