module G = Broker_graph.Graph

let partition g ~k =
  if k < 1 then invalid_arg "Regions.partition: k >= 1";
  let n = G.n g in
  if n = 0 then [||]
  else begin
    (* Farthest-point seeding. *)
    let seeds = Array.make (min k n) 0 in
    let best = ref 0 in
    for v = 1 to n - 1 do
      if G.degree g v > G.degree g !best then best := v
    done;
    seeds.(0) <- !best;
    let min_dist = Array.make n max_int in
    let update_from s =
      let d = Broker_graph.Bfs.distances g s in
      for v = 0 to n - 1 do
        if d.(v) >= 0 && d.(v) < min_dist.(v) then min_dist.(v) <- d.(v)
      done
    in
    update_from seeds.(0);
    for i = 1 to Array.length seeds - 1 do
      (* Farthest reachable vertex from the current seed set. *)
      let far = ref seeds.(0) and far_d = ref (-1) in
      for v = 0 to n - 1 do
        if min_dist.(v) < max_int && min_dist.(v) > !far_d then begin
          far := v;
          far_d := min_dist.(v)
        end
      done;
      seeds.(i) <- !far;
      update_from seeds.(i)
    done;
    (* Region of each vertex: nearest seed, ties to the lower id —
       realized by a multi-source BFS expanding one ring per seed in id
       order. *)
    let region = Array.make n (-1) in
    let dists = Array.map (fun s -> Broker_graph.Bfs.distances g s) seeds in
    for v = 0 to n - 1 do
      let best_r = ref 0 and best_d = ref max_int in
      Array.iteri
        (fun r d ->
          if d.(v) >= 0 && d.(v) < !best_d then begin
            best_r := r;
            best_d := d.(v)
          end)
        dists;
      region.(v) <- (if !best_d = max_int then 0 else !best_r)
    done;
    region
  end

let region_sizes regions ~k =
  let sizes = Array.make k 0 in
  Array.iter (fun r -> if r >= 0 && r < k then sizes.(r) <- sizes.(r) + 1) regions;
  sizes

let seeded_selection g ~regions ~k =
  let n = G.n g in
  if n = 0 || k <= 0 then [||]
  else begin
    let n_regions = 1 + Array.fold_left max 0 regions in
    let cov = Coverage.create g in
    (* Seed each region with its max-degree vertex, budget permitting. *)
    let budget = ref k in
    for r = 0 to n_regions - 1 do
      if !budget > 0 then begin
        let best = ref (-1) in
        for v = 0 to n - 1 do
          if regions.(v) = r && (!best < 0 || G.degree g v > G.degree g !best)
          then best := v
        done;
        if !best >= 0 then begin
          Coverage.add cov !best;
          decr budget
        end
      end
    done;
    if Coverage.size cov < k then Maxsg.grow cov ~k;
    Coverage.brokers cov
  end

type fairness = {
  per_region : float array;
  min_region : float;
  max_region : float;
  jain : float;
}

let coverage_fairness g ~regions ~n_regions ~brokers =
  let n = G.n g in
  let cov = Coverage.create g in
  Array.iter (Coverage.add cov) brokers;
  let covered = Array.make n_regions 0 in
  let total = Array.make n_regions 0 in
  for v = 0 to n - 1 do
    let r = regions.(v) in
    if r >= 0 && r < n_regions then begin
      total.(r) <- total.(r) + 1;
      if Coverage.is_covered cov v then covered.(r) <- covered.(r) + 1
    end
  done;
  let per_region =
    Array.init n_regions (fun r ->
        if total.(r) = 0 then 0.0
        else float_of_int covered.(r) /. float_of_int total.(r))
  in
  let populated = Array.to_list per_region |> List.filteri (fun r _ -> total.(r) > 0) in
  let xs = Array.of_list populated in
  let sum = Array.fold_left ( +. ) 0.0 xs in
  let sumsq = Array.fold_left (fun a x -> a +. (x *. x)) 0.0 xs in
  let m = float_of_int (Array.length xs) in
  {
    per_region;
    min_region = Array.fold_left Float.min infinity xs;
    max_region = Array.fold_left Float.max 0.0 xs;
    jain = (if sumsq = 0.0 then 1.0 else sum *. sum /. (m *. sumsq));
  }
