module G = Broker_graph.Graph
module Bfs = Broker_graph.Bfs

type curve = { l_max : int; per_hop : float array; saturated : float }

let value_at c l =
  if l <= 0 then 0.0 else if l > c.l_max then c.saturated else c.per_hop.(l)

let unrestricted = fun _ -> true

let of_brokers ~n brokers =
  let set = Broker_util.Bitset.create n in
  Array.iter (Broker_util.Bitset.add set) brokers;
  fun v -> Broker_util.Bitset.mem set v

let edge_ok ~is_broker u v = is_broker u || is_broker v

(* Per-worker accumulator of the source-parallel evaluation. Everything
   accumulated is an integer count, so the merged totals are independent of
   how sources were partitioned across domains — the property that lets
   the engine use strided load balancing while staying bit-identical under
   any REPRO_DOMAINS setting. *)
type acc = { hist : int array; mutable reached : int; mutable total : int }

let empty_acc l_max = { hist = Array.make (l_max + 1) 0; reached = 0; total = 0 }

let merge_acc x y =
  Array.iteri (fun i v -> x.hist.(i) <- x.hist.(i) + v) y.hist;
  x.reached <- x.reached + y.reached;
  x.total <- x.total + y.total;
  x

(* The one place integer tallies become a curve: every evaluator —
   generic, scalar, MS-BFS and the incremental tracker — must funnel
   through this exact float arithmetic so their curves can be compared
   bitwise. *)
let curve_of_counts ~l_max ~hist ~reached ~total =
  if Array.length hist < l_max + 1 then
    invalid_arg "Connectivity.curve_of_counts: histogram shorter than l_max";
  let ftotal = float_of_int (max 1 total) in
  let per_hop = Array.make (l_max + 1) 0.0 in
  let acc = ref 0 in
  for l = 1 to l_max do
    acc := !acc + hist.(l);
    per_hop.(l) <- float_of_int !acc /. ftotal
  done;
  { l_max; per_hop; saturated = float_of_int reached /. ftotal }

let curve_of_acc ~l_max a =
  curve_of_counts ~l_max ~hist:a.hist ~reached:a.reached ~total:a.total

(* Reference implementation: one predicate-filtered BFS per source, a fresh
   distance array each, contiguous chunking. This is the slow generic path
   the engine below is qcheck-tested against (and the "legacy" side of the
   bench kernel pair); keep its behavior frozen. *)
let eval_generic ~l_max g ~is_broker sources =
  let n = G.n g in
  if n < 2 then { l_max; per_hop = Array.make (l_max + 1) 0.0; saturated = 0.0 }
  else begin
    let edge_ok = edge_ok ~is_broker in
    let worker ~lo ~hi =
      let a = empty_acc l_max in
      for i = lo to hi - 1 do
        let dist = Bfs.distances_filtered g ~edge_ok sources.(i) in
        Array.iter
          (fun d ->
            if d > 0 then begin
              a.reached <- a.reached + 1;
              if d <= l_max then a.hist.(d) <- a.hist.(d) + 1
            end)
          dist;
        a.total <- a.total + (n - 1)
      done;
      a
    in
    let a =
      Broker_util.Parallel.chunked ~n:(Array.length sources) ~worker
        ~merge:merge_acc (empty_acc l_max)
    in
    curve_of_acc ~l_max a
  end

(* Scalar engine path (PR 3): materialize the dominated subgraph once per
   broker set, then run closure-free direction-optimizing BFS per source
   on a per-domain reusable workspace. Per-hop counts come straight from
   the BFS level sizes — no per-source distance array, no O(n) scan.
   Sources are strided across domains because per-source BFS cost is
   wildly uneven (a source outside the dominated component finishes
   immediately). Superseded as the default by the batched MS-BFS path
   below; kept callable as [eval_sources_scalar] — the bench comparison
   point ([connectivity/projected]) and a second equivalence oracle. *)
let eval_scalar ~l_max g ~is_broker sources =
  let n = G.n g in
  if n < 2 then { l_max; per_hop = Array.make (l_max + 1) 0.0; saturated = 0.0 }
  else begin
    let proj = Broker_graph.Projected.project g ~is_broker in
    let pg = Broker_graph.Projected.graph proj in
    let nsrc = Array.length sources in
    let worker ~start ~step =
      let ws = Bfs.workspace () in
      let a = empty_acc l_max in
      let i = ref start in
      while !i < nsrc do
        Bfs.run ws pg sources.(!i);
        for d = 1 to Bfs.max_level ws do
          let c = Bfs.level_count ws d in
          a.reached <- a.reached + c;
          if d <= l_max then a.hist.(d) <- a.hist.(d) + c
        done;
        a.total <- a.total + (n - 1);
        i := !i + step
      done;
      a
    in
    let a =
      Broker_util.Parallel.strided ~n:nsrc ~worker ~merge:merge_acc
        (empty_acc l_max)
    in
    curve_of_acc ~l_max a
  end

(* Batched MS-BFS path: same projection, but sources are packed
   [Msbfs.lanes] per machine word and each batch is settled by a handful
   of word-parallel sweeps ([Msbfs.run]). Per-hop counts come from the
   batch's per-level pair popcounts, which equal the sum of the scalar
   per-source level counts bit for bit. Batches (not sources) are strided
   across domains; batch composition is fixed by the source order alone,
   and every accumulated quantity is an integer count, so the merged
   totals are independent of REPRO_DOMAINS and bitwise identical to the
   scalar and generic reference paths. *)
let eval ~l_max g ~is_broker sources =
  let n = G.n g in
  if n < 2 then { l_max; per_hop = Array.make (l_max + 1) 0.0; saturated = 0.0 }
  else begin
    let proj = Broker_graph.Projected.project g ~is_broker in
    let pg = Broker_graph.Projected.graph proj in
    let nsrc = Array.length sources in
    let lanes = Broker_graph.Msbfs.lanes in
    let nbatch = (nsrc + lanes - 1) / lanes in
    let worker ~start ~step =
      let ws = Broker_graph.Msbfs.workspace () in
      let a = empty_acc l_max in
      let b = ref start in
      while !b < nbatch do
        let lo = !b * lanes in
        let len = min lanes (nsrc - lo) in
        Broker_graph.Msbfs.run ws pg sources ~lo ~len;
        for d = 1 to Broker_graph.Msbfs.max_level ws do
          let c = Broker_graph.Msbfs.level_pairs ws d in
          a.reached <- a.reached + c;
          if d <= l_max then a.hist.(d) <- a.hist.(d) + c
        done;
        a.total <- a.total + (len * (n - 1));
        b := !b + step
      done;
      a
    in
    let a =
      Broker_util.Parallel.strided ~n:nbatch ~worker ~merge:merge_acc
        (empty_acc l_max)
    in
    curve_of_acc ~l_max a
  end

let eval_sources ?(l_max = 10) g ~is_broker sources = eval ~l_max g ~is_broker sources

let eval_sources_scalar ?(l_max = 10) g ~is_broker sources =
  eval_scalar ~l_max g ~is_broker sources

let eval_sources_reference ?(l_max = 10) g ~is_broker sources =
  eval_generic ~l_max g ~is_broker sources

let exact ?(l_max = 10) g ~is_broker =
  eval ~l_max g ~is_broker (Array.init (G.n g) (fun i -> i))

let sampled ?(l_max = 10) ?source_set ~rng ~sources g ~is_broker =
  let srcs =
    match source_set with
    | Some s -> s
    | None ->
        let n = G.n g in
        let k = min sources n in
        Broker_util.Sampling.without_replacement rng ~n ~k
  in
  eval ~l_max g ~is_broker srcs

let saturated_sampled ~rng ~sources g ~is_broker =
  (sampled ~l_max:1 ~rng ~sources g ~is_broker).saturated
