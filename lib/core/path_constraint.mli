(** Problem 4: MCBG with path-length constraints, and the stochastic
    feasibility test of Eq. (4): a broker-selection strategy is feasible
    when its dominated-path length distribution F_B(l) tracks the target
    distribution F(l) within ε at every l. *)

type verdict = {
  feasible : bool;
  epsilon : float;  (** the ε the verdict was taken against *)
  max_deviation : float;  (** sup_l |F_B(l) - F(l)| over the compared range *)
  worst_l : int;  (** an l attaining the maximum deviation *)
}

val max_deviation : Connectivity.curve -> target:Connectivity.curve -> float * int
(** Supremum deviation between two connectivity curves (compared on hop
    counts 1 .. min of the two l_max, plus the saturated values). *)

val feasible :
  epsilon:float -> Connectivity.curve -> target:Connectivity.curve -> verdict
(** Eq. (4) with the free-path-selection curve of the same topology as the
    natural [target]. *)
