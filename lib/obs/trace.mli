(** Nestable named spans and counter samples in a preallocated ring,
    dumped as Chrome trace-event JSON (loadable in Perfetto /
    [chrome://tracing]).

    Tracing is independent of the metrics flag: it is active only after
    {!arm}, which preallocates the global ring. Recording a span is two
    monotonic clock reads plus one atomic slot reservation — no
    allocation on the hot path, safe from any domain. When the ring
    wraps, the oldest events are overwritten ({!dropped} counts them).

    Spans nest naturally: the Chrome "X" (complete) event carries start
    and duration, and the viewer reconstructs the stack per thread from
    overlap, so no enter/exit pairing state is kept here. *)

type scope
(** An interned span/counter name. Intern once at module-init time
    ([let t_run = Trace.scope "bfs.run"]); interning takes a lock,
    recording never does. *)

val scope : string -> scope

val arm : ?capacity:int -> unit -> unit
(** Allocate the ring ([capacity] rounded up to a power of two,
    default 65536 events) and start recording. No-op when
    {!Control.available} is [false]. *)

val disarm : unit -> unit
(** Stop recording and release the ring. *)

val armed : unit -> bool
val reset : unit -> unit
(** Forget all recorded events; the ring stays armed. *)

val enter : unit -> int
(** Start a span: the current timestamp, or 0 when not armed. *)

val leave : scope -> int -> unit
(** [leave sc t0] completes the span opened by {!enter} as [sc]. *)

val leave_named : string -> int -> unit
(** {!leave} with a dynamic name (interned per call — fine for
    per-experiment spans, not for per-edge work). *)

val with_span : scope -> (unit -> 'a) -> 'a
(** Run a thunk inside a span; the span closes on exception too. *)

val sample : scope -> int -> unit
(** Record an instantaneous counter value (a Chrome "C" event), e.g.
    the BFS frontier size at each level. *)

val recorded : unit -> int
(** Events currently held (at most the ring capacity). *)

val dropped : unit -> int
(** Events lost to ring wraparound since {!arm}/{!reset}. *)

val publish_dropped : unit -> unit
(** Push {!dropped} into the volatile [trace.dropped] gauge so the
    next {!Metrics.snapshot} (hence [--obs-summary] and the metrics
    artifact) surfaces silent ring truncation. {!write} calls it
    automatically; call it yourself before snapshotting when the trace
    is kept in memory. *)

val to_chrome_json : unit -> string
(** The trace as a JSON object: [{"traceEvents": [...], ...}] with
    per-domain [tid]s, thread-name metadata, and microsecond
    timestamps normalized to the earliest event. *)

val write : path:string -> bool
(** Write {!to_chrome_json} to [path]; returns [false] (and creates no
    file) when not armed or nothing was recorded. *)
