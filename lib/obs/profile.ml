type gc_delta = {
  minor_words : float;
  major_words : float;
  promoted_words : float;
  minor_collections : int;
  major_collections : int;
}

let zero =
  {
    minor_words = 0.;
    major_words = 0.;
    promoted_words = 0.;
    minor_collections = 0;
    major_collections = 0;
  }

let add a b =
  {
    minor_words = a.minor_words +. b.minor_words;
    major_words = a.major_words +. b.major_words;
    promoted_words = a.promoted_words +. b.promoted_words;
    minor_collections = a.minor_collections + b.minor_collections;
    major_collections = a.major_collections + b.major_collections;
  }

let measure f =
  let a = Gc.quick_stat () in
  let x = f () in
  let b = Gc.quick_stat () in
  ( x,
    {
      minor_words = b.Gc.minor_words -. a.Gc.minor_words;
      major_words = b.Gc.major_words -. a.Gc.major_words;
      promoted_words = b.Gc.promoted_words -. a.Gc.promoted_words;
      minor_collections = b.Gc.minor_collections - a.Gc.minor_collections;
      major_collections = b.Gc.major_collections - a.Gc.major_collections;
    } )
