(* Span + counter-sample recording into one preallocated global ring.

   A recorded event is four ints: a code (2*scope for a completed span,
   2*scope+1 for a counter sample), a start timestamp (ns), a duration
   (ns; for counter samples the sampled value), and the recording
   domain's id. Writers reserve a slot with one [Atomic.fetch_and_add]
   on the cursor — no allocation, no lock — and the ring silently
   overwrites the oldest events once full ({!dropped} reports how
   many). Slots are only read after parallel work has joined. *)

type scope = int

let name_lock = Mutex.create ()
let names : string array ref = ref (Array.make 16 "")
let name_count = ref 0
let ids : (string, int) Hashtbl.t = Hashtbl.create 64

let scope name =
  Mutex.lock name_lock;
  let id =
    match Hashtbl.find_opt ids name with
    | Some id -> id
    | None ->
        let id = !name_count in
        if id = Array.length !names then begin
          let bigger = Array.make (2 * id) "" in
          Array.blit !names 0 bigger 0 id;
          names := bigger
        end;
        !names.(id) <- name;
        incr name_count;
        Hashtbl.add ids name id;
        id
  in
  Mutex.unlock name_lock;
  id

type ring = {
  codes : int array;
  ts : int array;
  dur : int array;
  tids : int array;
  mask : int;
  cursor : int Atomic.t;
}

let ring : ring option ref = ref None
let armed_flag = ref false
let armed () = !armed_flag
let default_capacity = 1 lsl 16

let arm ?(capacity = default_capacity) () =
  if Control.available then begin
    let cap =
      let c = ref 16 in
      while !c < capacity do
        c := !c * 2
      done;
      !c
    in
    ring :=
      Some
        {
          codes = Array.make cap 0;
          ts = Array.make cap 0;
          dur = Array.make cap 0;
          tids = Array.make cap 0;
          mask = cap - 1;
          cursor = Atomic.make 0;
        };
    armed_flag := true
  end

let disarm () =
  armed_flag := false;
  ring := None

let reset () =
  match !ring with None -> () | Some r -> Atomic.set r.cursor 0

(* The emit path — [record] and its [leave]/[sample] wrappers — is
   checked [@brokercheck.noalloc]: a span end costs one atomic
   reservation and four int stores, so probes stay cheap enough to
   leave armed around parallel kernels. *)
let[@brokercheck.noalloc] record code t0 d =
  match !ring with
  | None -> ()
  | Some r ->
      let i = Atomic.fetch_and_add r.cursor 1 land r.mask in
      r.codes.(i) <- code;
      r.ts.(i) <- t0;
      r.dur.(i) <- d;
      r.tids.(i) <- (Domain.self () :> int)

let enter () = if !armed_flag then Clock.monotonic_ns () else 0

let[@brokercheck.noalloc] leave sc t0 =
  if !armed_flag then record (2 * sc) t0 (Clock.monotonic_ns () - t0)

let leave_named name t0 = if !armed_flag then leave (scope name) t0

let with_span sc f =
  if !armed_flag then begin
    let t0 = Clock.monotonic_ns () in
    Fun.protect ~finally:(fun () -> leave sc t0) f
  end
  else f ()

let[@brokercheck.noalloc] sample sc v =
  if !armed_flag then record ((2 * sc) + 1) (Clock.monotonic_ns ()) v

let recorded () =
  match !ring with
  | None -> 0
  | Some r -> min (Atomic.get r.cursor) (r.mask + 1)

let dropped () =
  match !ring with
  | None -> 0
  | Some r -> max 0 (Atomic.get r.cursor - (r.mask + 1))

(* Silent ring truncation is invisible in the trace itself (the oldest
   events are simply gone), so the wraparound count is also published
   as a metric: it rides every snapshot into `--obs-summary` and the
   metrics artifact. Volatile — how many events fit before wrapping
   depends on wall-clock interleaving and the domain count. *)
let g_dropped = Metrics.gauge ~volatile:true "trace.dropped"
let publish_dropped () = Metrics.gauge_max g_dropped (dropped ())

(* --- Chrome trace-event sink ----------------------------------------- *)

let add_json_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_us buf ns =
  (* ts/dur are microseconds in the trace-event format; keep the
     nanosecond precision as three decimals. *)
  Buffer.add_string buf (Printf.sprintf "%.3f" (float_of_int ns /. 1e3))

let to_chrome_json () =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf "{\"traceEvents\": [";
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_string buf ",\n ";
    ()
  in
  sep ();
  Buffer.add_string buf
    "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": 0, \
     \"args\": {\"name\": \"brokerset\"}}";
  (match !ring with
  | None -> ()
  | Some r ->
      let count = recorded () in
      let t_min = ref max_int in
      for i = 0 to count - 1 do
        if r.ts.(i) < !t_min then t_min := r.ts.(i)
      done;
      let t0 = if count = 0 then 0 else !t_min in
      let idx = Array.init count (fun i -> i) in
      Array.sort
        (fun a b ->
          let c = Int.compare r.tids.(a) r.tids.(b) in
          if c <> 0 then c
          else
            let c = Int.compare r.ts.(a) r.ts.(b) in
            if c <> 0 then c else Int.compare a b)
        idx;
      let last_tid = ref min_int in
      Array.iter
        (fun i ->
          let tid = r.tids.(i) in
          if tid <> !last_tid then begin
            last_tid := tid;
            sep ();
            Buffer.add_string buf
              (Printf.sprintf
                 "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, \
                  \"tid\": %d, \"args\": {\"name\": \"domain %d\"}}"
                 tid tid)
          end;
          let code = r.codes.(i) in
          let name = !names.(code lsr 1) in
          sep ();
          if code land 1 = 0 then begin
            Buffer.add_string buf "{\"name\": ";
            add_json_string buf name;
            Buffer.add_string buf
              (Printf.sprintf
                 ", \"cat\": \"obs\", \"ph\": \"X\", \"pid\": 0, \"tid\": %d, \
                  \"ts\": "
                 tid);
            add_us buf (r.ts.(i) - t0);
            Buffer.add_string buf ", \"dur\": ";
            add_us buf r.dur.(i);
            Buffer.add_char buf '}'
          end
          else begin
            Buffer.add_string buf "{\"name\": ";
            add_json_string buf name;
            Buffer.add_string buf
              (Printf.sprintf
                 ", \"cat\": \"obs\", \"ph\": \"C\", \"pid\": 0, \"tid\": %d, \
                  \"ts\": "
                 tid);
            add_us buf (r.ts.(i) - t0);
            Buffer.add_string buf
              (Printf.sprintf ", \"args\": {\"value\": %d}}" r.dur.(i))
          end)
        idx);
  Buffer.add_string buf "],\n \"displayTimeUnit\": \"ms\"}\n";
  Buffer.contents buf

let write ~path =
  if (not !armed_flag) || recorded () = 0 then false
  else begin
    publish_dropped ();
    let oc = open_out path in
    output_string oc (to_chrome_json ());
    close_out oc;
    true
  end
