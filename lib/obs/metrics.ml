type counter = { c_volatile : bool; cell : int Atomic.t }
type gauge = { g_volatile : bool; gcell : int Atomic.t }

(* Histograms are a Sketch at sub_bits 0: the two-level HDR indexing
   degenerates to one cell per power-of-two octave — 63 cells with
   exactly the historical bucket edges (bucket 0 holds <= 0, bucket
   i >= 1 holds [2^(i-1), 2^i)), so snapshots and the hist.* report
   series are byte-identical to the pre-Sketch implementation. *)
let hist_sub_bits = 0
let bucket_count = 63

type histogram = { h_volatile : bool; sk : Sketch.t }

type reg =
  | Rcounter of counter
  | Rgauge of gauge
  | Rhist of histogram

let registry : (string, reg) Hashtbl.t = Hashtbl.create 64
let lock = Mutex.create ()

let register name make select =
  Mutex.lock lock;
  let r =
    match Hashtbl.find_opt registry name with
    | Some r -> r
    | None ->
        let r = make () in
        Hashtbl.add registry name r;
        r
  in
  Mutex.unlock lock;
  match select r with
  | Some v -> v
  | None ->
      invalid_arg
        (Printf.sprintf
           "Broker_obs.Metrics: %S already registered with a different kind \
            or volatility"
           name)

let counter ?(volatile = false) name =
  register name
    (fun () -> Rcounter { c_volatile = volatile; cell = Atomic.make 0 })
    (function
      | Rcounter c when c.c_volatile = volatile -> Some c
      | _ -> None)

let gauge ?(volatile = false) name =
  register name
    (fun () -> Rgauge { g_volatile = volatile; gcell = Atomic.make 0 })
    (function
      | Rgauge g when g.g_volatile = volatile -> Some g
      | _ -> None)

let histogram ?(volatile = false) name =
  register name
    (fun () ->
      Rhist
        { h_volatile = volatile; sk = Sketch.create ~sub_bits:hist_sub_bits () })
    (function
      | Rhist h when h.h_volatile = volatile -> Some h
      | _ -> None)

(* --- probe operations: one flag check, then an atomic RMW ------------- *)

let add c n = if Control.enabled () then ignore (Atomic.fetch_and_add c.cell n)
let incr c = add c 1

let rec gauge_max g v =
  if Control.enabled () then begin
    let cur = Atomic.get g.gcell in
    if v > cur && not (Atomic.compare_and_set g.gcell cur v) then gauge_max g v
  end

let bucket_of v = Sketch.index_at ~sub_bits:hist_sub_bits v
let observe h v = if Control.enabled () then Sketch.record h.sk v

(* --- snapshots -------------------------------------------------------- *)

type value =
  | Counter of int
  | Gauge_max of int
  | Histogram of int array

type entry = { name : string; volatile : bool; value : value }
type snapshot = entry list

let snapshot () =
  Mutex.lock lock;
  let entries =
    Hashtbl.fold
      (fun name r acc ->
        let volatile, value =
          match r with
          | Rcounter c -> (c.c_volatile, Counter (Atomic.get c.cell))
          | Rgauge g -> (g.g_volatile, Gauge_max (Atomic.get g.gcell))
          | Rhist h -> (h.h_volatile, Histogram (Sketch.counts h.sk))
        in
        { name; volatile; value } :: acc)
      registry []
  in
  Mutex.unlock lock;
  List.sort (fun a b -> String.compare a.name b.name) entries

let deterministic snap = List.filter (fun e -> not e.volatile) snap

let find snap name =
  List.find_opt (fun e -> String.equal e.name name) snap

let reset () =
  Mutex.lock lock;
  Hashtbl.iter
    (fun _ r ->
      match r with
      | Rcounter c -> Atomic.set c.cell 0
      | Rgauge g -> Atomic.set g.gcell 0
      | Rhist h -> Sketch.reset h.sk)
    registry;
  Mutex.unlock lock
