(* Windowed series on the simulation clock. Single-writer by design:
   the simulator event loop is sequential, so window cells are plain
   mutable ints — determinism comes from the sim-time keying, not from
   atomics (the per-window {!Sketch} cells are atomic regardless, so
   merging window sketches stays commutative). *)

type window = {
  mutable w_count : int;
  mutable w_sum : int;
  mutable w_sketch : Sketch.t option;
}

type t = {
  ts_name : string;
  ts_scope : Trace.scope;
  mutable ts_width : float;
  mutable wins : window option array;
  mutable last : int;  (* highest window index touched; -1 when empty *)
  mutable emitted : int;  (* highest window index flushed to Trace *)
}

let registry : (string, t) Hashtbl.t = Hashtbl.create 32
let lock = Mutex.create ()
let default_window = 1.0

let check_window w =
  if Float.is_nan w || w <= 0.0 then
    invalid_arg "Broker_obs.Timeseries: window width must be > 0"

let series ?(window = default_window) name =
  check_window window;
  Mutex.lock lock;
  let t =
    match Hashtbl.find_opt registry name with
    | Some t -> t
    | None ->
        let t =
          {
            ts_name = name;
            ts_scope = Trace.scope name;
            ts_width = window;
            wins = Array.make 16 None;
            last = -1;
            emitted = -1;
          }
        in
        Hashtbl.add registry name t;
        t
  in
  Mutex.unlock lock;
  t

let name t = t.ts_name
let width t = t.ts_width

let restart ?window t =
  (match window with
  | None -> ()
  | Some w ->
      check_window w;
      t.ts_width <- w);
  Array.fill t.wins 0 (Array.length t.wins) None;
  t.last <- -1;
  t.emitted <- -1

let index_of t time =
  if Float.is_nan time || time < 0.0 then
    invalid_arg "Broker_obs.Timeseries: sim-time must be >= 0";
  int_of_float (Float.floor (time /. t.ts_width))

(* Completed windows become Perfetto counter samples ("C" events carry
   the window sum) the moment a later window is first touched; [flush]
   pushes the trailing open window at end of run. The sample timestamp
   is wall-clock (that is what a trace is); the deterministic sim-time
   view lives in [points]. *)
let emit_upto t i =
  if Trace.armed () then
    for j = t.emitted + 1 to i do
      let v =
        if j < Array.length t.wins then
          match t.wins.(j) with Some w -> w.w_sum | None -> 0
        else 0
      in
      Trace.sample t.ts_scope v
    done;
  if i > t.emitted then t.emitted <- i

let window_at t i =
  if i > t.last then begin
    emit_upto t (i - 1);
    t.last <- i
  end;
  if i >= Array.length t.wins then begin
    let cap = ref (Array.length t.wins) in
    while i >= !cap do
      cap := 2 * !cap
    done;
    let bigger = Array.make !cap None in
    Array.blit t.wins 0 bigger 0 (Array.length t.wins);
    t.wins <- bigger
  end;
  match t.wins.(i) with
  | Some w -> w
  | None ->
      let w = { w_count = 0; w_sum = 0; w_sketch = None } in
      t.wins.(i) <- Some w;
      w

let add t ~time v =
  let w = window_at t (index_of t time) in
  w.w_count <- w.w_count + 1;
  w.w_sum <- w.w_sum + v

let observe t ~time v =
  let w = window_at t (index_of t time) in
  w.w_count <- w.w_count + 1;
  w.w_sum <- w.w_sum + v;
  let sk =
    match w.w_sketch with
    | Some sk -> sk
    | None ->
        let sk = Sketch.create () in
        w.w_sketch <- Some sk;
        sk
  in
  Sketch.record sk v

let flush t = if t.last >= 0 then emit_upto t t.last

type point = {
  t_start : float;
  count : int;
  sum : int;
  sketch : Sketch.t option;
}

let points t =
  Array.init (t.last + 1) (fun i ->
      let t_start = float_of_int i *. t.ts_width in
      match t.wins.(i) with
      | Some w ->
          { t_start; count = w.w_count; sum = w.w_sum; sketch = w.w_sketch }
      | None -> { t_start; count = 0; sum = 0; sketch = None })

let values t =
  Array.map (fun p -> (p.t_start, float_of_int p.sum)) (points t)

let all () =
  Mutex.lock lock;
  let ts = Hashtbl.fold (fun _ t acc -> t :: acc) registry [] in
  Mutex.unlock lock;
  List.sort (fun a b -> String.compare a.ts_name b.ts_name) ts

let reset_all () = List.iter (fun t -> restart t) (all ())

let fixed_point = 1e6

let to_fp x =
  if Float.is_nan x || x <= 0.0 then 0
  else int_of_float (Float.round (x *. fixed_point))

let of_fp v = float_of_int v /. fixed_point
