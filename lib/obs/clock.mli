(** The project clock: monotonic, allocation-free, and the only
    sanctioned way to read time outside [bench/].

    brokerlint rule R8 ([clock-discipline]) bans [Unix.gettimeofday] and
    [Sys.time] everywhere but [lib/obs/] and [bench/]; code that wants a
    duration calls {!time} (or {!now_ns} pairs) so the wall-clock value
    flows through the obs layer and stays flagged volatile in reports.

    The clock works regardless of {!Control.enabled} — timing an
    ablation is not instrumentation, it is the measurement itself. *)

val monotonic_ns : unit -> int
(** [CLOCK_MONOTONIC] in nanoseconds (a C primitive, no allocation).
    Only differences are meaningful; the epoch is unspecified. *)

val now_ns : unit -> int
(** Alias for {!monotonic_ns}. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result with the elapsed
    monotonic wall-clock in seconds. Report such values with
    [Report.seconds] / [~volatile:true] so they never gate a diff. *)
