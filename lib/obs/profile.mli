(** GC-pressure profiling: [Gc.quick_stat] deltas around a thunk.

    In OCaml 5 [Gc.quick_stat] reads the calling domain's counters, so
    {!measure} wrapped around a {!Broker_util.Parallel} worker body
    yields that worker's own allocation profile; per-domain deltas are
    summed into the (volatile) [parallel.gc.*] counters. Word counts
    are scheduling-dependent, never diffed. *)

type gc_delta = {
  minor_words : float;
  major_words : float;
  promoted_words : float;
  minor_collections : int;
  major_collections : int;
}

val zero : gc_delta
val add : gc_delta -> gc_delta -> gc_delta

val measure : (unit -> 'a) -> 'a * gc_delta
(** [measure f] is [f ()] together with the GC counter movement it
    caused on the calling domain. Runs [f] unconditionally — callers
    guard with {!Control.enabled} if the measurement itself is the
    point. *)
