(** Named counters, high-water gauges, and log-bucketed histograms.

    Instruments register once at module-init time (registration is
    idempotent by name) and update through probes that are a single
    inlined {!Control.enabled} check followed by an atomic
    read-modify-write. All cells are [int Atomic.t]: updates commute, so
    totals are bit-identical for every [REPRO_DOMAINS] setting — the
    property that makes the snapshot diffable run-to-run.

    Taxonomy: a metric registered with [~volatile:true] carries
    wall-clock or scheduling-dependent data (worker nanoseconds, GC
    words); it renders in reports via the volatile [Report.seconds]
    convention and is excluded from [report diff]. Everything else must
    be deterministic for a fixed seed/scale — counters like edges
    relaxed, CELF lazy hits, or simulator events popped by kind. *)

type counter
type gauge
type histogram

val counter : ?volatile:bool -> string -> counter
(** Register (or re-obtain) the counter named [name].
    @raise Invalid_argument if [name] is already registered with a
    different kind or volatility. *)

val gauge : ?volatile:bool -> string -> gauge
(** A high-water gauge: {!gauge_max} keeps the maximum observed value. *)

val histogram : ?volatile:bool -> string -> histogram
(** Log-bucketed histogram with {!bucket_count} fixed bins: bucket 0
    holds values [<= 0], bucket [i >= 1] holds [2^(i-1) .. 2^i - 1], and
    the last bucket absorbs everything larger. Internally a {!Sketch}
    at [sub_bits = 0] — the same bucketing implementation the
    {!Timeseries} latency windows use at finer resolution. *)

val add : counter -> int -> unit
val incr : counter -> unit

val gauge_max : gauge -> int -> unit
(** Raise the gauge to [v] if [v] exceeds the current maximum
    (lock-free CAS loop; max is commutative). *)

val observe : histogram -> int -> unit

val bucket_of : int -> int
(** The bucket index {!observe} files [v] under (exposed for tests). *)

val bucket_count : int

(** {1 Snapshots} *)

type value =
  | Counter of int
  | Gauge_max of int
  | Histogram of int array  (** per-bucket observation counts *)

type entry = { name : string; volatile : bool; value : value }

type snapshot = entry list
(** Sorted by [name]. *)

val snapshot : unit -> snapshot
(** Read every registered instrument. Take it after parallel work has
    joined; reads are atomic per cell but not across cells. *)

val deterministic : snapshot -> snapshot
(** Only the entries that must replay bit-for-bit from the seed. *)

val find : snapshot -> string -> entry option
val reset : unit -> unit
(** Zero every registered instrument (registrations persist). *)
