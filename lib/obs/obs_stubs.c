/* Monotonic clock for the observability layer.
 *
 * CLOCK_MONOTONIC nanoseconds returned as a tagged OCaml int: 62 bits
 * of nanoseconds-since-boot overflow after ~146 years of uptime, so the
 * subtraction (t1 - t0) done on the OCaml side is always exact. Declared
 * [@@noalloc] on the OCaml side: Val_long never allocates.
 */
#include <time.h>
#include <caml/mlvalues.h>

CAMLprim value broker_obs_monotonic_ns(value unit)
{
  struct timespec ts;
  (void)unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return Val_long((long)ts.tv_sec * 1000000000L + (long)ts.tv_nsec);
}
