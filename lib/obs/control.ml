let flag = ref false
let available = Obs_gate.available
let enabled () = available && !flag
let set_enabled b = flag := b && available
