external monotonic_ns : unit -> int = "broker_obs_monotonic_ns" [@@noalloc]

let now_ns = monotonic_ns

let time f =
  let t0 = monotonic_ns () in
  let x = f () in
  let t1 = monotonic_ns () in
  (x, float_of_int (t1 - t0) *. 1e-9)
