(** Named windowed time series keyed on deterministic sim-time.

    A series chops the sim-time axis into fixed-width windows; each
    window holds a count, an integer sum, and (on demand) a {!Sketch}
    of recorded samples. Series register once by name under a mutex —
    like {!Metrics}, registration is idempotent and meant for
    module-init time — and are {e restarted} per run: the window width
    is a run knob (e.g. [brokerctl simulate --stats-window W]), not
    part of the series identity.

    {b Sim-time vs wall-clock.} Windows are keyed on the simulation
    clock, so the resulting [(t, value)] points are deterministic for a
    fixed seed/scale and diff clean through [report diff] — unlike
    {!Trace} timestamps, which are wall-clock and always volatile. When
    the trace ring is armed, each completed window is additionally
    emitted as a Perfetto counter track (a Chrome ["C"] event carrying
    the window sum) at wall-clock flush time.

    {b Fixed-point convention.} Sketches hold integers; latencies
    measured in (float) sim-time are recorded as
    [to_fp latency = round (latency * fixed_point)] micro-units and
    divided back by {!fixed_point} for reporting. *)

type t

val series : ?window:float -> string -> t
(** Register (or re-obtain) the series named [name]. The width
    ([window], default 1.0 sim-time units) is set at first
    registration; re-obtaining an existing series returns it unchanged
    — use {!restart} to re-window.
    @raise Invalid_argument if [window] is not positive. *)

val name : t -> string

val width : t -> float
(** Current window width in sim-time units. *)

val restart : ?window:float -> t -> unit
(** Drop all recorded windows (and the flush cursor), optionally
    changing the window width. Call at the start of each run.
    @raise Invalid_argument if [window] is not positive. *)

val add : t -> time:float -> int -> unit
(** Add [v] to the sum (and bump the count) of the window containing
    [time]. Crossing into a later window than any seen before flushes
    the completed windows to {!Trace} (when armed).
    @raise Invalid_argument if [time] is negative or NaN. *)

val observe : t -> time:float -> int -> unit
(** {!add}, and additionally record [v] into the window's sketch
    (created on first observation, at {!Sketch.default_sub_bits}). *)

val flush : t -> unit
(** Emit any not-yet-emitted windows (including the last, still-open
    one) as Perfetto counter samples. Call once at end of run. *)

type point = {
  t_start : float;  (** window start in sim-time: index × width *)
  count : int;
  sum : int;
  sketch : Sketch.t option;
      (** the live window sketch — read after the run completes *)
}

val points : t -> point array
(** Dense snapshot from window 0 through the last touched window
    (untouched windows in between yield [count = 0], [sum = 0],
    [sketch = None]); empty when nothing was recorded. *)

val values : t -> (float * float) array
(** [(t_start, sum)] pairs of {!points} — the shape
    [Report.series] takes. *)

val all : unit -> t list
(** Every registered series, sorted by name. *)

val reset_all : unit -> unit
(** {!restart} every registered series (widths are kept;
    registrations persist). *)

(** {1 Fixed-point sim-time} *)

val fixed_point : float
(** 1e6: sketches store sim-time latencies in integer micro-units. *)

val to_fp : float -> int
(** [round (x * fixed_point)], clamped to 0 for negative [x]. *)

val of_fp : int -> float
(** [float v / fixed_point]. *)
