(* Two-level HDR-style indexing over non-negative ints: an exact region
   below [sub = 2^sub_bits], then [sub] equal-width sub-cells per
   power-of-two octave. Every cell is an [int Atomic.t]; recording and
   merging are fetch-and-adds, so cell values commute across domains and
   replay bitwise for any REPRO_DOMAINS. *)

type t = { sb : int; cells : int Atomic.t array }

let default_sub_bits = 5
let max_sub_bits = 8

(* The highest octave starts at bit 61 (max_int has 62 significant
   bits), so octaves [sub_bits .. 61] plus the exact region give
   [(63 - sub_bits) * 2^sub_bits] cells — 63 at sub_bits 0, matching
   the historical Metrics histogram exactly. *)
let cell_count sb = (63 - sb) * (1 lsl sb)

let create ?(sub_bits = default_sub_bits) () =
  if sub_bits < 0 || sub_bits > max_sub_bits then
    invalid_arg "Broker_obs.Sketch.create: sub_bits out of range";
  { sb = sub_bits; cells = Array.init (cell_count sub_bits) (fun _ -> Atomic.make 0) }

let sub_bits t = t.sb
let cells t = Array.length t.cells

(* Branch-free bit length (position of the highest set bit, plus one):
   smear the top bit downward, then popcount the all-ones suffix. SWAR
   popcount with the same 63-bit-truncated constants as
   Broker_util.Bitset — lib/obs sits below lib/util, so the few lines
   are inlined here rather than imported. *)
let[@inline] bit_length v =
  let v = v lor (v lsr 1) in
  let v = v lor (v lsr 2) in
  let v = v lor (v lsr 4) in
  let v = v lor (v lsr 8) in
  let v = v lor (v lsr 16) in
  let v = v lor (v lsr 32) in
  let x = v - ((v lsr 1) land 0x1555555555555555) in
  let x = (x land 0x3333333333333333) + ((x lsr 2) land 0x3333333333333333) in
  let x = (x + (x lsr 4)) land 0x0F0F0F0F0F0F0F0F in
  (x * 0x0101010101010101) lsr 56

let[@inline] index_at ~sub_bits:sb v =
  if v < 0 then 0
  else if v < 1 lsl sb then v
  else begin
    let k = bit_length v - 1 in
    (* Sub-cell within octave k: (v lsr (k - sb)) is in [2^sb, 2^(sb+1)). *)
    ((k - sb + 1) lsl sb) + (v lsr (k - sb)) - (1 lsl sb)
  end

let index t v = index_at ~sub_bits:t.sb v

let[@brokercheck.noalloc] record t v =
  ignore (Atomic.fetch_and_add t.cells.(index_at ~sub_bits:t.sb v) 1)

let count t = Array.fold_left (fun acc c -> acc + Atomic.get c) 0 t.cells

let lower_bound t i =
  if i < 0 || i >= Array.length t.cells then
    invalid_arg "Broker_obs.Sketch.lower_bound: cell index out of range";
  let sub = 1 lsl t.sb in
  if i < sub then i
  else begin
    let j = i - sub in
    let octave = j lsr t.sb in
    let off = j land (sub - 1) in
    (sub + off) lsl octave
  end

(* Nearest-rank selection: rank r = round (q * (count - 1)) picked in
   cell order, which is value order up to cell granularity — the rank-r
   sample lies in the first cell whose cumulative count exceeds r. *)
let rank_of q total =
  let r = int_of_float (Float.round (q *. float_of_int (total - 1))) in
  if r < 0 then 0 else if r > total - 1 then total - 1 else r

let quantile t q =
  if Float.is_nan q || q < 0.0 || q > 1.0 then
    invalid_arg "Broker_obs.Sketch.quantile: q out of [0, 1]";
  let total = count t in
  if total = 0 then 0
  else begin
    let r = rank_of q total in
    let cum = ref 0 in
    let i = ref 0 in
    let found = ref 0 in
    let continue = ref true in
    while !continue do
      cum := !cum + Atomic.get t.cells.(!i);
      if !cum > r then begin
        found := !i;
        continue := false
      end
      else begin
        incr i;
        if !i >= Array.length t.cells then begin
          found := Array.length t.cells - 1;
          continue := false
        end
      end
    done;
    lower_bound t !found
  end

let percentiles_into t qs out =
  let m = Array.length qs in
  if Array.length out <> m then
    invalid_arg "Broker_obs.Sketch.percentiles_into: length mismatch";
  Array.iteri
    (fun i q ->
      if Float.is_nan q || q < 0.0 || q > 1.0 then
        invalid_arg "Broker_obs.Sketch.percentiles_into: q out of [0, 1]";
      if i > 0 && q < qs.(i - 1) then
        invalid_arg "Broker_obs.Sketch.percentiles_into: qs not ascending")
    qs;
  let total = count t in
  if total = 0 then Array.fill out 0 m 0
  else begin
    (* One cumulative sweep: ranks are ascending with qs, so each cell
       is visited once no matter how many percentiles are requested. *)
    let cum = ref 0 in
    let cell = ref (-1) in
    let j = ref 0 in
    while !j < m do
      let r = rank_of qs.(!j) total in
      while !cum <= r && !cell < Array.length t.cells - 1 do
        incr cell;
        cum := !cum + Atomic.get t.cells.(!cell)
      done;
      out.(!j) <- lower_bound t (max 0 !cell);
      incr j
    done
  end

let merge ~into src =
  if into.sb <> src.sb then
    invalid_arg "Broker_obs.Sketch.merge: sub_bits mismatch";
  Array.iteri
    (fun i c ->
      let v = Atomic.get c in
      if v <> 0 then ignore (Atomic.fetch_and_add into.cells.(i) v))
    src.cells

let counts t = Array.map Atomic.get t.cells
let reset t = Array.iter (fun c -> Atomic.set c 0) t.cells
