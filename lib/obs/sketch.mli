(** Mergeable log-bucketed quantile sketch with HDR-style sub-bucket
    resolution.

    A sketch is a fixed array of [int Atomic.t] cells indexed by a
    two-level scheme over non-negative integers (negative values clamp
    to cell 0):

    - values below [2^sub_bits] land in their own cell (exact);
    - a value [v >= 2^sub_bits] with highest set bit [k] lands in one of
      [2^sub_bits] equal-width sub-cells of the octave [[2^k, 2^(k+1))],
      each of width [2^(k - sub_bits)].

    {b Error bound.} {!quantile} returns the lower bound [l] of the cell
    holding the selected rank, so the true sample [v] at that rank
    satisfies [l <= v < l * (1 + 2^-sub_bits)] — a one-sided relative
    error below [2^-sub_bits] (3.125% at the default [sub_bits = 5]),
    and exact (zero error) for values below [2^sub_bits]. The bound is
    immediate from the cell widths above: a cell starting at
    [l >= 2^k] has width [2^(k - sub_bits) <= l * 2^-sub_bits].

    {b Determinism.} Cells are [int Atomic.t] and every update is a
    fetch-and-add, so concurrent recording from any number of domains
    commutes: totals are bitwise identical for every [REPRO_DOMAINS]
    setting. {!merge} is cellwise addition, hence commutative and
    associative — merging per-window or per-domain sketches in any
    order yields the same cells.

    {b Cost.} {!record} is allocation-free (checked
    [@brokercheck.noalloc]): a branch-free bit-length computation, one
    cell index, one atomic fetch-and-add. [sub_bits = 0] degenerates to
    the 63-bucket power-of-two histogram {!Metrics} exposes. *)

type t

val default_sub_bits : int
(** 5: 32 sub-buckets per octave, relative error below 1/32. *)

val max_sub_bits : int
(** 8 — caps a sketch at [(63 - 8) * 256] cells. *)

val create : ?sub_bits:int -> unit -> t
(** A fresh sketch of [(63 - sub_bits) * 2^sub_bits] zero cells
    ([sub_bits] defaults to {!default_sub_bits}).
    @raise Invalid_argument if [sub_bits] is outside
    [0 .. max_sub_bits]. *)

val sub_bits : t -> int

val cells : t -> int
(** Number of cells (fixed at creation). *)

val record : t -> int -> unit
(** Count one observation of [v] (clamped to 0 when negative).
    Allocation-free and safe from any domain. *)

val count : t -> int
(** Total observations recorded (cell sum; reads are atomic per cell
    but not across cells — take totals after parallel work joins). *)

val index : t -> int -> int
(** The cell {!record} files [v] under (exposed for tests). *)

val index_at : sub_bits:int -> int -> int
(** {!index} as a pure function of the shape. With [~sub_bits:0] this
    is exactly the historical [Metrics.bucket_of]: 0 for [v <= 0],
    otherwise the position of the highest set bit plus one. *)

val lower_bound : t -> int -> int
(** Smallest value filed under cell [i] — the value {!quantile}
    reports for a rank landing in that cell. *)

val quantile : t -> float -> int
(** [quantile t q] selects rank [round (q * (count - 1))] (clamped to
    [0 .. count-1]) in the recorded multiset and returns the
    {!lower_bound} of its cell — see the error bound above. Returns 0
    on an empty sketch.
    @raise Invalid_argument if [q] is outside [0, 1]. *)

val percentiles_into : t -> float array -> int array -> unit
(** [percentiles_into t qs out] fills [out.(i)] with [quantile t
    qs.(i)] in one cumulative pass.
    @raise Invalid_argument if lengths differ or [qs] is not ascending
    within [0, 1]. *)

val merge : into:t -> t -> unit
(** Cellwise [into += src]; commutative and associative. [src] is
    unchanged.
    @raise Invalid_argument if the shapes ([sub_bits]) differ. *)

val counts : t -> int array
(** Per-cell observation counts (a fresh snapshot array). *)

val reset : t -> unit
(** Zero every cell. *)
